//! Offline stand-in for the `criterion` benchmark harness surface this
//! workspace uses: groups, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, element throughput, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: a short warmup sizes the per-iteration cost, then
//! `sample_size` samples are timed and the median per-iteration time is
//! reported (median is robust to scheduler noise, which matters in shared
//! containers). No statistical regression analysis, no HTML reports — one
//! line per benchmark on stdout, machine-grepable:
//! `bench: <group>/<id> ... median <t> ... [<throughput> elem/s]`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget.
#[derive(Debug, Clone, Copy)]
struct Budget {
    warmup: Duration,
    measure: Duration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(300),
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs one benchmark body repeatedly and records the median iteration time.
pub struct Bencher {
    budget: Budget,
    samples: usize,
    median: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup: discover the per-iteration cost.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if start.elapsed() >= self.budget.warmup {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        // Split the measurement budget into `samples` timed batches.
        let per_sample = self.budget.measure.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);
        let mut sample_times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_times.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        sample_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median = Duration::from_secs_f64(sample_times[sample_times.len() / 2]);
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.criterion.budget,
            samples: self.sample_size,
            median: Duration::ZERO,
        };
        body(&mut b);
        self.report(&id.to_string(), b.median);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            budget: self.criterion.budget,
            samples: self.sample_size,
            median: Duration::ZERO,
        };
        body(&mut b, input);
        self.report(&id.id, b.median);
        self
    }

    fn report(&self, id: &str, median: Duration) {
        let mut line = format!("bench: {}/{id}  median {}", self.name, fmt_duration(median));
        if let Some(t) = self.throughput {
            let s = median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.3e} elem/s", n as f64 / s));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.3e} B/s", n as f64 / s));
                }
            }
        }
        println!("{line}");
    }

    pub fn finish(&mut self) {}
}

/// Benchmark registry/driver. Extra CLI arguments (as passed by
/// `cargo bench -- <filter>`) are accepted and ignored.
#[derive(Default)]
pub struct Criterion {
    budget: Budget,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(&name).sample_size(10);
        let mut g = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: 10,
            throughput: None,
        };
        g.name = name;
        g.bench_function("", body);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut c = Criterion {
            budget: Budget {
                warmup: Duration::from_millis(2),
                measure: Duration::from_millis(10),
            },
        };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }
}
