//! Minimal stand-in for `rand_distr`: the `Distribution` trait and a
//! Box–Muller `StandardNormal`, which is all the workspace samples.

use rand::RngCore;

/// A distribution from which values of type `T` can be drawn.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one fresh pair per draw keeps the stream stateless and
        // deterministic per underlying-rng position.
        let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64); // (0, 1]
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // [0, 1)
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Normal distribution with mean and standard deviation (unused by the core
/// paths but part of the familiar API; kept for downstream experiments).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, &'static str> {
        if std_dev < 0.0 || !std_dev.is_finite() {
            return Err("standard deviation must be finite and non-negative");
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        const N: usize = 50_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..N {
            let x: f64 = StandardNormal.sample(&mut rng);
            s1 += x;
            s2 += x * x;
        }
        let mean = s1 / N as f64;
        let var = s2 / N as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
