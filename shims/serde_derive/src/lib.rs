//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace only ever *derives* these traits to keep its public types
//! serialization-ready; nothing serializes at runtime (there is no
//! serde_json in the tree). Expanding to an empty token stream keeps every
//! `#[derive(Serialize, Deserialize)]` compiling without the real serde
//! machinery, and the `serde` attribute is registered so field/container
//! attributes remain legal.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
