//! Offline stand-in for the one `libm` routine this workspace calls:
//! `tgamma` (the Gamma function), used by the Matérn covariance and its
//! Bessel-function evaluation for smoothness parameters ν ∈ (0, ~30).
//!
//! Implementation: Lanczos approximation (g = 7, n = 9 coefficients),
//! reflected through Γ(x)Γ(1−x) = π / sin(πx) for x < 0.5. Relative error
//! is below 1e-13 across the range the covariance models use — far inside
//! the tolerances of every statistical test in the tree.

const G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// The Gamma function Γ(x).
pub fn tgamma(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x == f64::INFINITY {
        return f64::INFINITY;
    }
    // Poles at zero and the negative integers.
    if x <= 0.0 && x == x.floor() {
        return f64::NAN;
    }
    if x < 0.5 {
        // Reflection formula keeps the Lanczos sum in its accurate range.
        return std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * tgamma(1.0 - x));
    }
    let z = x - 1.0;
    let mut sum = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        sum += c / (z + i as f64);
    }
    let t = z + G + 0.5;
    (2.0 * std::f64::consts::PI).sqrt() * t.powf(z + 0.5) * (-t).exp() * sum
}

#[cfg(test)]
mod tests {
    use super::tgamma;

    #[test]
    fn integer_factorials() {
        for (n, fact) in [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (8.0, 5040.0),
        ] {
            let g = tgamma(n);
            assert!(
                ((g - fact) / fact).abs() < 1e-12,
                "gamma({n}) = {g}, want {fact}"
            );
        }
    }

    #[test]
    fn half_integer_values() {
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((tgamma(0.5) - sqrt_pi).abs() / sqrt_pi < 1e-13);
        assert!((tgamma(1.5) - 0.5 * sqrt_pi).abs() / (0.5 * sqrt_pi) < 1e-13);
        assert!((tgamma(2.5) - 0.75 * sqrt_pi).abs() / (0.75 * sqrt_pi) < 1e-13);
    }

    #[test]
    fn reflection_for_negatives() {
        // Γ(−0.5) = −2√π
        let want = -2.0 * std::f64::consts::PI.sqrt();
        assert!((tgamma(-0.5) - want).abs() / want.abs() < 1e-12);
        assert!(tgamma(-1.0).is_nan());
        assert!(tgamma(0.0).is_nan());
    }

    #[test]
    fn matern_smoothness_range() {
        // Spot-check against high-precision reference values in the ν range
        // the covariance kernels use.
        let cases = [
            (0.25, 3.625_609_908_221_908),
            (1.25, 0.906_402_477_055_477),
            (2.5, 1.329_340_388_179_137),
        ];
        for (x, want) in cases {
            let g = tgamma(x);
            assert!(((g - want) / want).abs() < 1e-12, "gamma({x}) = {g}");
        }
    }
}
