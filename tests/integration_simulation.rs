//! Integration tests of the performance-simulation path: precision maps +
//! conversion plans driving the cluster DES, checking the paper's headline
//! relationships hold in the model.

use mixedp::prelude::*;

fn opts(strategy: Strategy) -> CholeskySimOptions {
    CholeskySimOptions { nb: 2048, strategy }
}

#[test]
fn paper_headline_shapes_single_v100() {
    let cluster = ClusterSpec::new(NodeSpec::summit().single_gpu(), 1);
    let nt = 30; // 61,440 — the paper's Fig 10 V100 size

    let fp64 = simulate_cholesky(
        &uniform_map(nt, Precision::Fp64),
        &cluster,
        opts(Strategy::Auto),
    );
    let fp32 = simulate_cholesky(
        &uniform_map(nt, Precision::Fp32),
        &cluster,
        opts(Strategy::Auto),
    );
    let fp16 = simulate_cholesky(
        &uniform_map(nt, Precision::Fp16),
        &cluster,
        opts(Strategy::Auto),
    );

    // FP64 ≥ 84% of peak (paper Fig 8a)
    let eff64 = fp64.tflops() / 7.8;
    assert!(eff64 > 0.84 && eff64 <= 1.0, "FP64 eff {eff64}");
    // FP32 roughly 2x FP64 on V100
    let r = fp32.tflops() / fp64.tflops();
    assert!(r > 1.6 && r < 2.2, "FP32/FP64 {r}");
    // FP64→FP64/FP16 speedup is many-fold (paper ~11x at larger sizes)
    let s = fp64.makespan_s / fp16.makespan_s;
    assert!(s > 4.0, "FP64→FP16 speedup {s}");
    // and saves energy by a comparable factor (paper Fig 10)
    assert!(fp16.energy_joules() < fp64.energy_joules() / 2.0);
}

#[test]
fn stc_beats_ttc_and_reduces_everything() {
    let cluster = ClusterSpec::new(NodeSpec::summit().single_gpu(), 1);
    let nt = 48; // beyond V100 memory: staging traffic matters
    let m = uniform_map(nt, Precision::Fp16x32);
    let ttc = simulate_cholesky(&m, &cluster, opts(Strategy::Ttc));
    let stc = simulate_cholesky(&m, &cluster, opts(Strategy::Auto));
    assert!(stc.makespan_s < ttc.makespan_s);
    assert!(stc.h2d_bytes < ttc.h2d_bytes);
    assert!(stc.conversions < ttc.conversions / 5);
    assert!(stc.energy_joules() < ttc.energy_joules());
    let speedup = ttc.makespan_s / stc.makespan_s;
    assert!(
        speedup > 1.1 && speedup < 2.0,
        "STC speedup {speedup} out of the paper's band"
    );
}

#[test]
fn multi_node_weak_scaling_grows_throughput() {
    let nb = 2048;
    let t1 = simulate_cholesky(
        &uniform_map(24, Precision::Fp64),
        &ClusterSpec::summit(1),
        CholeskySimOptions {
            nb,
            strategy: Strategy::Auto,
        },
    );
    let t4 = simulate_cholesky(
        &uniform_map(38, Precision::Fp64), // ~4x the flops of NT=24
        &ClusterSpec::summit(4),
        CholeskySimOptions {
            nb,
            strategy: Strategy::Auto,
        },
    );
    assert!(
        t4.tflops() > 2.0 * t1.tflops(),
        "weak scaling {} -> {}",
        t1.tflops(),
        t4.tflops()
    );
}

#[test]
fn strong_scaling_reduces_makespan() {
    let nt = 96;
    let run = |nodes| {
        simulate_cholesky(
            &uniform_map(nt, Precision::Fp64),
            &ClusterSpec::summit(nodes),
            opts(Strategy::Auto),
        )
        .makespan_s
    };
    let t4 = run(4);
    let t16 = run(16);
    assert!(t16 < t4 / 2.0, "strong scaling {t4} -> {t16}");
}

#[test]
fn deterministic_simulation() {
    let cluster = ClusterSpec::summit(2);
    let m = uniform_map(20, Precision::Fp16);
    let a = simulate_cholesky(&m, &cluster, opts(Strategy::Auto));
    let b = simulate_cholesky(&m, &cluster, opts(Strategy::Auto));
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.h2d_bytes, b.h2d_bytes);
    assert_eq!(a.nic_bytes, b.nic_bytes);
    assert_eq!(a.conversions, b.conversions);
}

#[test]
fn occupancy_series_sane() {
    let cluster = ClusterSpec::new(NodeSpec::haxane(), 1);
    let rep = simulate_cholesky(
        &uniform_map(24, Precision::Fp32),
        &cluster,
        opts(Strategy::Auto),
    );
    let series = rep.occupancy_series(0, 20);
    assert_eq!(series.len(), 20);
    assert!(series.iter().all(|&v| (0.0..=1.0).contains(&v)));
    // the bulk of a compute-bound run is near-fully occupied
    let high = series.iter().filter(|&&v| v > 0.9).count();
    assert!(high >= 10, "{series:?}");
}
