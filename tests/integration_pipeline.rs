//! End-to-end integration: synthetic data → adaptive precision map →
//! mixed-precision factorization → log-likelihood → parameter estimation,
//! crossing every crate of the workspace.

use mixedp::geostats::loglik::{ExactBackend, LoglikBackend};
use mixedp::kernels::reconstruction_error;
use mixedp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_pipeline_matern_2d() {
    let n = 225;
    let nb = 48;
    let mut rng = StdRng::seed_from_u64(5);
    let locs = gen_locations_2d(n, &mut rng);
    let model = Matern2d;
    let theta_true = [1.0, 0.1, 0.5];
    let z = generate_field(&model, &locs, &theta_true, &mut rng);

    // exact and tight-MP likelihoods agree at the true parameters
    let exact = loglik_exact(&model, &locs, &theta_true, &z).unwrap();
    let mp = MpBackend::new(1e-12, nb, 2)
        .loglik(&model, &locs, &theta_true, &z)
        .unwrap();
    assert!(
        ((exact - mp) / exact).abs() < 1e-10,
        "exact {exact} vs mp {mp}"
    );

    // estimation through the MP backend lands near the exact estimate
    let mut cfg = MleConfig::paper_defaults(3);
    cfg.optimizer.max_evals = 150;
    cfg.optimizer.restarts = 0;
    let r_exact = estimate(&model, &locs, &z, &cfg, &ExactBackend);
    let r_mp = estimate(&model, &locs, &z, &cfg, &MpBackend::new(1e-9, nb, 2));
    for (a, b) in r_exact.theta_hat.iter().zip(&r_mp.theta_hat) {
        assert!(
            (a - b).abs() < 0.05,
            "exact {:?} vs mp {:?}",
            r_exact.theta_hat,
            r_mp.theta_hat
        );
    }
}

#[test]
fn factorization_accuracy_ladder_sqexp() {
    // the factorization error must track u_req across the ladder
    let n = 300;
    let nb = 50;
    let mut rng = StdRng::seed_from_u64(6);
    let locs = gen_locations_2d(n, &mut rng);
    let model = SqExp::new2d();
    let theta = [1.0, 0.005]; // weak correlation: well conditioned
    let sigma = SymmTileMatrix::from_fn(
        n,
        nb,
        |i, j| covariance_entry(&model, &locs, i, j, &theta),
        |_, _| StoragePrecision::F64,
    );
    let dense = sigma.to_dense_symmetric();
    let norms = tile_fro_norms(&sigma);

    let mut errs = Vec::new();
    for u_req in [1e-13, 1e-8, 1e-4] {
        let pmap = PrecisionMap::from_norms(&norms, u_req, &Precision::ADAPTIVE_SET);
        let mut a = sigma.clone();
        factorize_mp(&mut a, &pmap, 2).unwrap();
        errs.push(reconstruction_error(&dense, &a.to_dense_lower()));
    }
    assert!(errs[0] < 1e-12, "{errs:?}");
    assert!(errs[0] <= errs[1] && errs[1] <= errs[2], "{errs:?}");
    assert!(
        errs[2] < 0.1,
        "even the loose factorization is usable: {errs:?}"
    );
}

#[test]
fn monte_carlo_mp_matches_exact_distribution() {
    // small paired Monte Carlo: the tight-accuracy MP estimator must track
    // the exact estimator replica by replica (paper Figs 5–6 at 1e-9)
    let model = SqExp::new2d();
    let mut mle = MleConfig::paper_defaults(2);
    mle.optimizer.max_evals = 120;
    mle.optimizer.restarts = 0;
    let cfg = MonteCarloConfig {
        theta_true: vec![1.0, 0.05],
        replicas: 3,
        seed: 11,
        mle,
    };
    let exact = run_monte_carlo(&model, 144, gen_locations_2d, &cfg, &ExactBackend);
    let mp_backend = MpBackend::new(1e-9, 48, 1);
    let mp = run_monte_carlo(&model, 144, gen_locations_2d, &cfg, &mp_backend);
    for (e, m) in exact.estimates.iter().zip(&mp.estimates) {
        for (a, b) in e.iter().zip(m) {
            assert!((a - b).abs() < 0.05, "exact {e:?} vs mp {m:?}");
        }
    }
}
