//! Property-based tests of the framework's cross-crate invariants.

use mixedp::core::conversion::{plan_conversions, plan_conversions_parallel};
use mixedp::core::factorize::build_dag;
use mixedp::kernels::reconstruction_error;
use mixedp::prelude::{
    factorize_mp, simulate_cholesky, tile_fro_norms, uniform_map, CholeskySimOptions, ClusterSpec,
    DenseMatrix, Grid2d, NodeSpec, Precision, PrecisionMap, StoragePrecision, SymmTileMatrix,
};
use proptest::prelude::*;

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Fp64),
        Just(Precision::Fp32),
        Just(Precision::Fp16x32),
        Just(Precision::Fp16),
    ]
}

fn arb_pmap(max_nt: usize) -> impl Strategy<Value = PrecisionMap> {
    (2..=max_nt).prop_flat_map(move |nt| {
        proptest::collection::vec(arb_precision(), nt * (nt + 1) / 2).prop_map(move |v| {
            let mut it = v.into_iter();
            PrecisionMap::from_fn(nt, |_, _| it.next().unwrap())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 2 invariants: comm ≤ storage fidelity; STC ⟺ comm strictly
    /// below storage; parallel planner ≡ sequential planner.
    #[test]
    fn conversion_plan_invariants(pmap in arb_pmap(12)) {
        let plan = plan_conversions(&pmap);
        let nt = pmap.nt();
        for i in 0..nt {
            for j in 0..=i {
                let storage = mixedp::fp::comm_of_storage(pmap.storage(i, j));
                let comm = plan.comm(i, j);
                prop_assert!(comm <= storage, "({i},{j}): {comm:?} > {storage:?}");
                prop_assert_eq!(plan.is_stc(i, j), comm < storage, "({},{})", i, j);
            }
        }
        prop_assert_eq!(plan, plan_conversions_parallel(&pmap));
    }

    /// The Cholesky DAG has the textbook task count and a critical path of
    /// exactly 3(NT−1)+1 kernels (POTRF→TRSM→SYRK chains).
    #[test]
    fn dag_structure(nt in 1usize..=14) {
        let dag = build_dag(nt);
        let expect = nt + nt * (nt - 1) + nt * (nt - 1) * nt.saturating_sub(2) / 6;
        prop_assert_eq!(dag.tasks.len(), expect);
        prop_assert_eq!(dag.graph.critical_path_len(), if nt == 1 { 1 } else { 3 * (nt - 1) + 1 });
    }

    /// Random SPD matrices factor under a tight map with near-FP64 accuracy,
    /// and looser maps never beat tighter ones.
    #[test]
    fn factorization_error_monotone(seed in 0u64..50, nt in 2usize..5) {
        let nb = 16;
        let n = nt * nb;
        // random symmetric diagonally-dominant matrix
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rnd = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = rnd() / (1.0 + (i - j) as f64).sqrt();
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        for i in 0..n {
            d[i * n + i] += n as f64 * 0.5;
        }
        let dense = DenseMatrix::from_vec(n, n, d);
        let a0 = SymmTileMatrix::from_dense(&dense, nb, StoragePrecision::F64);
        let norms = tile_fro_norms(&a0);

        let mut prev_err = 0.0;
        for u_req in [1e-14, 1e-6, 1e-2] {
            let pmap = PrecisionMap::from_norms(&norms, u_req, &Precision::ADAPTIVE_SET);
            let mut a = a0.clone();
            factorize_mp(&mut a, &pmap, 1).unwrap();
            let err = reconstruction_error(&dense, &a.to_dense_lower());
            prop_assert!(err >= prev_err || (err - prev_err).abs() < 1e-12,
                "error not monotone: {prev_err} -> {err} at u_req {u_req}");
            prev_err = err;
        }
        prop_assert!(prev_err < 0.5);
    }

    /// The block-cyclic grid covers every rank and balances whole multiples.
    #[test]
    fn grid_balance(nranks in 1usize..=64) {
        let g = Grid2d::squarest(nranks);
        prop_assert_eq!(g.nranks(), nranks);
        let nt = g.p() * g.q() * 2;
        let mut counts = vec![0usize; nranks];
        for i in 0..nt {
            for j in 0..nt {
                counts[g.rank_of(i, j)] += 1;
            }
        }
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert_eq!(mn, mx, "block-cyclic imbalance at multiples");
    }

    /// Simulated makespan is monotone in matrix size and never beats the
    /// aggregate peak.
    #[test]
    fn simulation_sanity(nt in 4usize..=16) {
        let cluster = ClusterSpec::new(NodeSpec::summit().single_gpu(), 1);
        let o = CholeskySimOptions { nb: 2048, strategy: mixedp::core::Strategy::Auto };
        let a = simulate_cholesky(&uniform_map(nt, Precision::Fp32), &cluster, o);
        let b = simulate_cholesky(&uniform_map(nt + 2, Precision::Fp32), &cluster, o);
        prop_assert!(b.makespan_s > a.makespan_s);
        // FP32 GEMMs on the FP32 units overlap FP64 SYRK/POTRF on the FP64
        // units, so the aggregate is bounded by the sum of the unit peaks.
        prop_assert!(a.tflops() <= (15.7 + 7.8) * 1.0001);
        prop_assert!(a.occupancy() <= 1.0 + 1e-9);
    }
}
