//! Quickstart: build a geospatial covariance matrix, pick an adaptive
//! precision map, plan conversions, factorize in mixed precision, and
//! compare the factor against full FP64.
//!
//! Run: `cargo run --release --example quickstart`

use mixedp::kernels::reconstruction_error;
use mixedp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- a synthetic 2D Matérn dataset (temperature-field-like) ---
    let n = 512;
    let nb = 64;
    let mut rng = StdRng::seed_from_u64(2024);
    let locs = gen_locations_2d(n, &mut rng);
    let model = Matern2d;
    let theta = [1.0, 0.1, 0.5]; // variance, range, smoothness

    println!("building Σ(θ) for {n} locations (tile size {nb})...");
    let sigma = SymmTileMatrix::from_fn(
        n,
        nb,
        |i, j| covariance_entry(&model, &locs, i, j, &theta),
        |_, _| StoragePrecision::F64,
    );
    let dense = sigma.to_dense_symmetric();

    // --- adaptive precision selection (paper §V) ---
    let norms = tile_fro_norms(&sigma);
    for accuracy in [1e-12, 1e-9, 1e-4] {
        let pmap = PrecisionMap::from_norms(&norms, accuracy, &Precision::ADAPTIVE_SET);
        let plan = plan_conversions(&pmap);

        let mut a = sigma.clone();
        let stats = factorize_mp(&mut a, &pmap, 2).expect("SPD");
        let err = reconstruction_error(&dense, &a.to_dense_lower());

        let pct: Vec<String> = pmap
            .percentages()
            .iter()
            .map(|(p, f)| format!("{} {:.0}%", p.label(), f))
            .collect();
        println!(
            "\nu_req = {accuracy:>6.0e}:  ‖A − LLᵀ‖/‖A‖ = {err:.2e}   ({} tasks in {:.2}s)",
            stats.tasks_run, stats.wall_s
        );
        println!("  tiles: {}", pct.join(", "));
        println!(
            "  storage: {:.1} MB vs {:.1} MB FP64  |  STC senders: {}",
            stats.storage_bytes_mp as f64 / 1e6,
            stats.storage_bytes_fp64 as f64 / 1e6,
            plan.stc_count(),
        );
    }
    println!("\nThe factorization error tracks the requested accuracy while the");
    println!("storage (and, on GPUs, the data motion) shrinks — the paper's trade.");
}
