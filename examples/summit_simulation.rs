//! Simulate the paper's Summit campaign end to end: pick a matrix size,
//! derive an application precision map, plan conversions, and replay the
//! Cholesky DAG on the calibrated cluster simulator — reporting time,
//! sustained Tflop/s, data motion, conversions, energy, and the STC/TTC
//! comparison, from one V100 up to multiple nodes.
//!
//! Run: `cargo run --release --example summit_simulation [-- --nt=60 --nodes=4]`

use mixedp::core::report::summarize;
use mixedp::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |key: &str, default: usize| {
        args.iter()
            .find_map(|a| a.strip_prefix(&format!("--{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let nt = get("nt", 60);
    let nodes = get("nodes", 4);
    let nb = 2048;

    println!(
        "simulated Summit: {nodes} node(s) x 6 V100 | matrix {} (NT {nt}, tile {nb})\n",
        nt * nb
    );
    let cluster = ClusterSpec::summit(nodes);

    for (label, pmap) in [
        ("FP64 (baseline)", uniform_map(nt, Precision::Fp64)),
        ("FP64/FP16_32", uniform_map(nt, Precision::Fp16x32)),
        ("FP64/FP16", uniform_map(nt, Precision::Fp16)),
    ] {
        println!("--- {label} ---");
        for (sname, strategy) in [("TTC", Strategy::Ttc), ("auto (STC)", Strategy::Auto)] {
            let rep = simulate_cholesky(&pmap, &cluster, CholeskySimOptions { nb, strategy });
            println!("  {sname:<11} {}", summarize(&rep));
        }
        println!();
    }
    println!("expected: the automated plan beats all-TTC wherever FP16-class tiles");
    println!("exist (smaller payloads + one conversion per sender), and FP64/FP16");
    println!("delivers the paper's multi-fold speedup over FP64.");
}
