//! 3D geospatial modeling: a synthetic "wind-speed volume" over the unit
//! cube under the 3D squared-exponential model, estimated at the paper's
//! 3D accuracy threshold (1e-8, Fig 6) — and a look at how much of the
//! covariance matrix the adaptive map keeps in high precision for 3D data
//! (the paper's most resource-intensive application, Fig 7c).
//!
//! Run: `cargo run --release --example wind_field_3d [-- --n=343]`

use mixedp::geostats::loglik::{ExactBackend, LoglikBackend};
use mixedp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = std::env::args()
        .find_map(|a| a.strip_prefix("--n=").and_then(|v| v.parse().ok()))
        .unwrap_or(343usize);
    let nb = 64;
    let theta_true = [1.0, 0.15];
    let model = SqExp::new3d();
    let mut rng = StdRng::seed_from_u64(99);
    let locs = gen_locations_3d(n, &mut rng);
    println!(
        "synthetic wind-speed volume at {n} sites (3D-sqexp, β = {})",
        theta_true[1]
    );
    let z = generate_field(&model, &locs, &theta_true, &mut rng);

    // How expensive is 3D data for the adaptive map?
    let backend = MpBackend::new(1e-8, nb, 2);
    let pmap = backend.precision_map_for(&model, &locs, &theta_true);
    println!("\nadaptive map at u_req = 1e-8 (3D keeps more high-precision tiles):");
    for (p, f) in pmap.percentages() {
        println!("  {:<8} {f:5.1}%", p.label());
    }

    let mut cfg = MleConfig::paper_defaults(2);
    cfg.optimizer.max_evals = 300;
    println!(
        "\n{:<10} {:>10} {:>10} {:>12}",
        "backend", "variance", "range", "loglik"
    );
    let backends: Vec<Box<dyn LoglikBackend>> = vec![
        Box::new(ExactBackend),
        Box::new(backend),
        Box::new(MpBackend::new(1e-4, nb, 2)),
    ];
    for be in &backends {
        let r = estimate(&model, &locs, &z, &cfg, be.as_ref());
        println!(
            "{:<10} {:>10.4} {:>10.4} {:>12.3}",
            be.label(),
            r.theta_hat[0],
            r.theta_hat[1],
            r.loglik
        );
    }
    println!("\nexpected (paper Fig 6): 1e-8 estimates are very close to exact.");
}
