//! Mixed-precision kriging: estimate parameters, factor the training
//! covariance with the adaptive mixed-precision Cholesky, and predict the
//! field at held-out locations — optionally with iterative refinement so
//! the MP factor delivers FP64-quality solves.
//!
//! Demonstrates the full "modeling and prediction" loop (paper §III-A) plus
//! the iterative-refinement extension (paper §II-B lineage).
//!
//! Run: `cargo run --release --example mp_prediction [-- --n=400]`

use mixedp::core::{factorize_mp, solve_refined, MpBackend, PrecisionMap};
use mixedp::geostats::covariance::covariance_entry;
use mixedp::geostats::predict::{mspe, predict, predict_with_solver};
use mixedp::kernels::spd_solve_tiled;
use mixedp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = std::env::args()
        .find_map(|a| a.strip_prefix("--n=").and_then(|v| v.parse().ok()))
        .unwrap_or(400usize);
    let nb = 64;
    let model = Matern2d;
    let theta_true = [1.0, 0.12, 0.8];

    // synthetic field, split into train/test
    let mut rng = StdRng::seed_from_u64(31);
    let locs = gen_locations_2d(n, &mut rng);
    let z = generate_field(&model, &locs, &theta_true, &mut rng);
    let mut train = Vec::new();
    let mut ztr = Vec::new();
    let mut test = Vec::new();
    let mut zte = Vec::new();
    for (i, (l, v)) in locs.iter().zip(&z).enumerate() {
        if i % 10 == 0 {
            test.push(*l);
            zte.push(*v);
        } else {
            train.push(*l);
            ztr.push(*v);
        }
    }
    println!(
        "{} training sites, {} prediction sites",
        train.len(),
        test.len()
    );

    // estimate θ̂ through the mixed-precision backend
    let mut cfg = MleConfig::paper_defaults(3);
    cfg.optimizer.max_evals = 300;
    let backend = MpBackend::new(1e-9, nb, 2);
    let fit = estimate(&model, &train, &ztr, &cfg, &backend);
    println!(
        "estimated θ̂ = [{:.3}, {:.3}, {:.3}] (true {:?})",
        fit.theta_hat[0], fit.theta_hat[1], fit.theta_hat[2], theta_true
    );
    let theta = &fit.theta_hat;

    // exact kriging baseline
    let exact = predict(&model, &train, &ztr, &test, theta).unwrap();
    println!("\nexact FP64 kriging      MSPE {:.4}", mspe(&exact, &zte));

    // mixed-precision kriging: factor Σ̃ once under a loose map
    let ntr = train.len();
    let sigma = SymmTileMatrix::from_fn(
        ntr,
        nb,
        |i, j| covariance_entry(&model, &train, i, j, theta),
        |_, _| StoragePrecision::F64,
    );
    let pmap = PrecisionMap::from_norms(&tile_fro_norms(&sigma), 1e-6, &Precision::ADAPTIVE_SET);
    let mut l_mp = sigma.clone();
    factorize_mp(&mut l_mp, &pmap, 2).expect("SPD");
    let pct: Vec<String> = pmap
        .percentages()
        .iter()
        .filter(|(_, f)| *f > 0.0)
        .map(|(p, f)| format!("{} {:.0}%", p.label(), f))
        .collect();
    println!("MP factor tile mix: {}", pct.join(", "));

    // (a) raw MP solves
    let raw = predict_with_solver(&model, &train, &ztr, &test, theta, |b| {
        spd_solve_tiled(&l_mp, b)
    })
    .unwrap();
    println!("MP kriging (raw solves) MSPE {:.4}", mspe(&raw, &zte));

    // (b) MP solves + iterative refinement to FP64 residuals (matrix-free
    // residuals through the tiled original)
    let refined = predict_with_solver(&model, &train, &ztr, &test, theta, |b| {
        solve_refined(&l_mp, |v| sigma.matvec(v), b, 1e-12, 30)
            .expect("refinement diverged")
            .x
    })
    .unwrap();
    println!("MP kriging + refinement MSPE {:.4}", mspe(&refined, &zte));

    let d_raw = exact
        .mean
        .iter()
        .zip(&raw.mean)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let d_ref = exact
        .mean
        .iter()
        .zip(&refined.mean)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!(
        "\nmax |μ* − μ*_exact|: raw {d_raw:.2e}, refined {d_ref:.2e} — refinement \
         recovers FP64 predictions from the cheap factor."
    );
}
