//! Full geostatistical modeling pipeline on a synthetic "near-surface
//! temperature" field: generate a 2D Matérn dataset, then recover its
//! parameters by maximum likelihood through the adaptive mixed-precision
//! Cholesky at several accuracy levels — the paper's end-to-end application
//! (§VII-B) in miniature.
//!
//! Run: `cargo run --release --example climate_mle [-- --n=400 --nb=64]`

use mixedp::geostats::loglik::{ExactBackend, LoglikBackend};
use mixedp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |key: &str, default: usize| {
        args.iter()
            .find_map(|a| a.strip_prefix(&format!("--{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n = get("n", 400);
    let nb = get("nb", 64);

    // The "climate field": smooth, medium-range correlated Matérn surface.
    let theta_true = [0.9, 0.12, 1.0];
    let model = Matern2d;
    let mut rng = StdRng::seed_from_u64(7);
    let locs = gen_locations_2d(n, &mut rng);
    println!("generating synthetic temperature field at {n} stations...");
    let z = generate_field(&model, &locs, &theta_true, &mut rng);

    let mut cfg = MleConfig::paper_defaults(3);
    cfg.optimizer.max_evals = 400;

    println!(
        "true parameters: variance {:.2}, range {:.2}, smoothness {:.2}\n",
        theta_true[0], theta_true[1], theta_true[2]
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>7}",
        "backend", "variance", "range", "smooth", "loglik", "evals"
    );

    let backends: Vec<Box<dyn LoglikBackend>> = vec![
        Box::new(ExactBackend),
        Box::new(MpBackend::new(1e-9, nb, 2)),
        Box::new(MpBackend::new(1e-4, nb, 2)),
    ];
    for be in &backends {
        let r = estimate(&model, &locs, &z, &cfg, be.as_ref());
        println!(
            "{:<10} {:>10.4} {:>10.4} {:>10.4} {:>12.3} {:>7}",
            be.label(),
            r.theta_hat[0],
            r.theta_hat[1],
            r.theta_hat[2],
            r.loglik,
            r.evals
        );
    }
    println!("\nexpected (paper Fig 5): 1e-9 estimates match 'exact'; 1e-4 drifts for");
    println!("the Matérn model — it needs the tighter threshold.");
}
